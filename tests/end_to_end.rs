//! Cross-crate integration tests: full NIC flows spanning every
//! subsystem (workloads → packet → rmt → noc → engines → sched).

use engines::engine::NullOffload;
use engines::mac::MacEngine;
use engines::tile::TileConfig;
use noc::router::RouterConfig;
use noc::topology::Topology;
use packet::chain::EngineClass;
use packet::message::{Priority, TenantId};
use panic_core::nic::{NicConfig, PanicNic};
use panic_core::programs::chain_program;
use panic_core::scenarios::kvs::{KvsScenario, KvsScenarioConfig};
use rmt::pipeline::PipelineConfig;
use sim_core::time::{Bandwidth, Cycle, Cycles, Freq};
use workloads::frames::FrameFactory;

fn small_nic(chain_hops: usize, service: u64) -> (PanicNic, packet::EngineId) {
    let freq = Freq::PANIC_DEFAULT;
    let mut b = PanicNic::builder(NicConfig {
        topology: Topology::mesh(4, 4),
        width_bits: 64,
        router: RouterConfig::default(),
        pipeline: PipelineConfig {
            parallel: 2,
            depth: 18,
            freq,
        },
        pcie_flush_interval: 0,
    });
    let eth = b.engine(
        Box::new(MacEngine::new("eth", Bandwidth::gbps(100), freq)),
        TileConfig::default(),
    );
    let offloads: Vec<packet::EngineId> = (0..chain_hops)
        .map(|i| {
            b.engine(
                Box::new(NullOffload::new(
                    format!("o{i}"),
                    EngineClass::Asic,
                    Cycles(service),
                )),
                TileConfig::default(),
            )
        })
        .collect();
    let _ = b.rmt_portal();
    let _ = b.rmt_portal();
    b.program(chain_program(&offloads, eth, Some(1000)));
    (b.build(), eth)
}

#[test]
fn thousand_frames_conserved_across_all_subsystems() {
    let (mut nic, eth) = small_nic(3, 1);
    let mut factory = FrameFactory::for_nic_port(0);
    let n = 1000u64;
    let mut now = Cycle(0);
    let mut sent = 0u64;
    let mut received = 0u64;
    for step in 0..200_000u64 {
        if step % 10 == 0 && sent < n {
            nic.rx_frame(
                eth,
                factory.min_frame((sent % 512) as u16, 80),
                TenantId((sent % 4) as u16),
                Priority::Normal,
                now,
            );
            sent += 1;
        }
        nic.tick(now);
        now = now.next();
        received += nic.take_wire_tx().len() as u64;
        if received == n {
            break;
        }
    }
    assert_eq!(received, n, "every frame accounted for");
    assert!(nic.is_quiescent());
    // Conservation identities.
    let s = nic.stats();
    assert_eq!(s.rx_frames, n);
    assert_eq!(s.tx_wire, n);
    assert_eq!(s.consumed, 0);
    assert_eq!(s.unrouted, 0);
    // Exactly one pipeline pass per frame.
    assert_eq!(nic.pipeline().stats().accepted, n);
    // NoC message conservation.
    let net = nic.network().stats();
    assert_eq!(net.injected_messages, net.delivered_messages);
}

#[test]
fn chain_order_is_respected_end_to_end() {
    // Offloads count invocations; with a 3-hop chain all three see
    // exactly the same number of messages.
    let (mut nic, eth) = small_nic(3, 2);
    let mut factory = FrameFactory::for_nic_port(0);
    let mut now = Cycle(0);
    for i in 0..50u64 {
        nic.rx_frame(
            eth,
            factory.min_frame(i as u16, 80),
            TenantId(0),
            Priority::Normal,
            now,
        );
    }
    let mut got = 0;
    for _ in 0..100_000 {
        nic.tick(now);
        now = now.next();
        got += nic.take_wire_tx().len();
        if got == 50 {
            break;
        }
    }
    assert_eq!(got, 50);
    for id in 1..=3u16 {
        let t = nic.tile(packet::EngineId(id)).unwrap();
        assert_eq!(t.stats().processed, 50, "offload {id} saw all frames");
    }
}

#[test]
fn latency_class_survives_contention_in_full_stack() {
    // One slow offload shared by everyone, scheduled by priority-
    // dependent slack; randomized arrivals create real queueing, and
    // latency frames must beat bulk through the scheduler.
    use rmt::action::{Action, Primitive, SlackExpr};
    use rmt::parse::ParseGraph;
    use rmt::program::ProgramBuilder;
    use rmt::table::{MatchKind, Table};

    let freq = Freq::PANIC_DEFAULT;
    let mut b = PanicNic::builder(NicConfig {
        topology: Topology::mesh(4, 4),
        width_bits: 64,
        router: RouterConfig::default(),
        pipeline: PipelineConfig {
            parallel: 2,
            depth: 18,
            freq,
        },
        pcie_flush_interval: 0,
    });
    let eth = b.engine(
        Box::new(MacEngine::new("eth", Bandwidth::gbps(100), freq)),
        TileConfig::default(),
    );
    let slow = b.engine(
        Box::new(NullOffload::new("slow", EngineClass::Asic, Cycles(30))),
        TileConfig {
            queue_capacity: 256,
            ..TileConfig::default()
        },
    );
    let _ = b.rmt_portal();
    let _ = b.rmt_portal();
    let slack = SlackExpr::ByPriority {
        latency: 50,
        normal: 50_000,
    };
    b.program(
        ProgramBuilder::new("contend", ParseGraph::standard(6379))
            .stage(Table::new(
                "all",
                MatchKind::Exact(vec![packet::phv::Field::EthType]),
                Action::named(
                    "chain",
                    vec![
                        Primitive::PushHop {
                            engine: slow,
                            slack,
                        },
                        Primitive::PushHop { engine: eth, slack },
                    ],
                ),
            ))
            .build(),
    );
    let mut nic = b.build();

    let mut rng = sim_core::rng::SimRng::new(5);
    let mut factory = FrameFactory::for_nic_port(0);
    let mut now = Cycle(0);
    for _ in 0..120_000u64 {
        // Bulk at ~0.85 of the slow engine's capacity, randomized so
        // queues actually form.
        if rng.gen_bool(1.0 / 35.0) {
            nic.rx_frame(
                eth,
                factory.min_frame(2, 9999),
                TenantId(2),
                Priority::Bulk,
                now,
            );
        }
        if rng.gen_bool(1.0 / 400.0) {
            nic.rx_frame(
                eth,
                factory.min_frame(1, 7),
                TenantId(1),
                Priority::Latency,
                now,
            );
        }
        nic.tick(now);
        now = now.next();
        let _ = nic.take_wire_tx();
    }
    let lat = nic.stats().latency_of(Priority::Latency).summary();
    let bulk = nic.stats().latency_of(Priority::Bulk).summary();
    assert!(lat.count > 100, "probes delivered: {}", lat.count);
    assert!(
        lat.p99 < bulk.p99,
        "latency-class p99 {} vs bulk p99 {}",
        lat.p99,
        bulk.p99
    );
}

#[test]
fn kvs_scenario_is_deterministic_and_correct() {
    let run = || {
        let mut cfg = KvsScenarioConfig::two_tenant_default();
        cfg.keys_per_tenant = 64;
        cfg.cached_hot_keys = 16;
        let mut s = KvsScenario::new(cfg);
        s.run(60_000);
        let r = s.report();
        (
            r.cache_hits,
            r.cache_misses,
            r.tenants
                .iter()
                .map(|t| (t.gets, t.sets, t.replies_ok, t.replies_bad))
                .collect::<Vec<_>>(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same world");
    assert!(a.0 > 0, "cache hits happened");
    for &(gets, _sets, ok, bad) in &a.2 {
        assert_eq!(bad, 0);
        assert!(ok as f64 >= gets as f64 * 0.85, "ok {ok} of {gets}");
    }
}

#[test]
fn seeds_change_the_world_but_not_its_invariants() {
    let run = |seed: u64| {
        let mut cfg = KvsScenarioConfig::two_tenant_default();
        cfg.keys_per_tenant = 64;
        cfg.cached_hot_keys = 16;
        cfg.seed = seed;
        let mut s = KvsScenario::new(cfg);
        s.run(40_000);
        let r = s.report();
        let bad: u64 = r.tenants.iter().map(|t| t.replies_bad).sum();
        assert_eq!(bad, 0, "seed {seed}: correctness is seed-independent");
        r.cache_hits
    };
    let h1 = run(1);
    let h2 = run(2);
    // Different seeds draw different keys; hit counts differ.
    assert_ne!(h1, h2);
}
