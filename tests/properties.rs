//! Property-based tests on the core data structures and invariants,
//! spanning crates (which is why they live at the workspace root).

use bytes::Bytes;
use proptest::prelude::*;

use packet::chain::{ChainHeader, EngineId, Hop, Slack};
use packet::headers::{
    build_udp_frame, ethertype, internet_checksum, EthernetHeader, Ipv4Addr, Ipv4Header, MacAddr,
    UdpHeader,
};
use packet::kvs::KvsRequest;
use packet::message::{Message, MessageId, MessageKind};
use packet::Flit;
use rmt::parse::ParseGraph;
use sched::pifo::Pifo;
use sim_core::stats::Histogram;

fn arb_hop() -> impl Strategy<Value = Hop> {
    (any::<u16>(), any::<u32>()).prop_map(|(e, s)| Hop {
        engine: EngineId(e),
        slack: Slack(s),
    })
}

proptest! {
    /// Chain encode/decode is the identity on pending hops, at any
    /// cursor position.
    #[test]
    fn chain_roundtrip(hops in proptest::collection::vec(arb_hop(), 0..=16), advances in 0usize..20) {
        let mut chain = ChainHeader::new(hops).unwrap();
        for _ in 0..advances {
            let _ = chain.advance();
        }
        let bytes = chain.encode();
        prop_assert_eq!(bytes.len(), chain.wire_bytes());
        let (decoded, used) = ChainHeader::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded.len(), chain.remaining());
        // Pending hops survive byte-for-byte.
        let pending: Vec<Hop> = {
            let mut c = chain.clone();
            let mut v = Vec::new();
            while let Some(h) = c.current() {
                v.push(h);
                c.advance();
            }
            v
        };
        prop_assert_eq!(decoded.hops(), &pending[..]);
    }

    /// Any KVS request round-trips through its wire encoding.
    #[test]
    fn kvs_roundtrip(tenant in any::<u16>(), id in any::<u32>(), key in any::<u64>(),
                     value in proptest::collection::vec(any::<u8>(), 0..512)) {
        let req = KvsRequest::set(tenant, id, key, Bytes::from(value));
        let decoded = KvsRequest::decode(&req.encode()).unwrap();
        prop_assert_eq!(decoded, req);
    }

    /// Emitted IPv4 headers always checksum to zero and reparse to the
    /// same header, for arbitrary field values.
    #[test]
    fn ipv4_emit_parse(tos in any::<u8>(), len in any::<u16>(), ident in any::<u16>(),
                       ttl in any::<u8>(), proto in any::<u8>(), src in any::<u32>(), dst in any::<u32>()) {
        let h = Ipv4Header {
            tos,
            total_len: len,
            ident,
            ttl,
            protocol: proto,
            src: Ipv4Addr::from_u32(src),
            dst: Ipv4Addr::from_u32(dst),
        };
        let mut buf = bytes::BytesMut::new();
        h.emit(&mut buf);
        prop_assert_eq!(internet_checksum(&buf), 0);
        let (parsed, _) = Ipv4Header::parse(&buf).unwrap();
        prop_assert_eq!(parsed, h);
    }

    /// The RLE codec is lossless for arbitrary bytes, and expansion is
    /// bounded by 1 + n/127 (+2 slack).
    #[test]
    fn compression_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let c = engines::compress::compress(&data);
        prop_assert_eq!(engines::compress::decompress(&c).unwrap(), data.clone());
        prop_assert!(c.len() <= data.len() + data.len() / 127 + 2);
    }

    /// The toy ESP transform is invertible for arbitrary inner frames
    /// and keys, and never invertible under the wrong key (tag check).
    #[test]
    fn ipsec_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..256),
                       key in any::<u64>(), seq in any::<u32>()) {
        use engines::ipsec::{decrypt_frame, encrypt_frame, SecurityAssoc, TunnelConfig};
        let tunnel = TunnelConfig {
            sa: SecurityAssoc { spi: 7, key },
            outer_src_mac: MacAddr::for_port(0),
            outer_dst_mac: MacAddr::for_port(1),
            outer_src_ip: Ipv4Addr::new(1, 2, 3, 4),
            outer_dst_ip: Ipv4Addr::new(5, 6, 7, 8),
        };
        let inner = build_udp_frame(
            EthernetHeader {
                dst: MacAddr::for_port(2),
                src: MacAddr::for_port(3),
                ethertype: ethertype::IPV4,
            },
            Ipv4Header {
                tos: 0, total_len: 0, ident: 0, ttl: 64, protocol: 0,
                src: Ipv4Addr::new(10, 0, 0, 1), dst: Ipv4Addr::new(10, 0, 0, 2),
            },
            UdpHeader { src_port: 1, dst_port: 2, len: 0, checksum: 0 },
            &payload,
        );
        let outer = encrypt_frame(&inner, &tunnel, seq);
        let mut sas = std::collections::HashMap::new();
        sas.insert(7u32, SecurityAssoc { spi: 7, key });
        prop_assert_eq!(&decrypt_frame(&outer, &sas).unwrap()[..], &inner[..]);
        let mut wrong = std::collections::HashMap::new();
        wrong.insert(7u32, SecurityAssoc { spi: 7, key: key.wrapping_add(1) });
        prop_assert!(decrypt_frame(&outer, &wrong).is_none());
    }

    /// Flit segmentation: flit count matches ceil(bits/width), exactly
    /// one head and one tail, sequence numbers dense, and the message
    /// survives in the tail.
    #[test]
    fn flit_segmentation(payload_len in 0usize..4096, width_pow in 5u32..9) {
        let width = 1u64 << width_pow; // 32..256 bits
        let msg = Message::builder(MessageId(1), MessageKind::Internal)
            .payload(Bytes::from(vec![0u8; payload_len]))
            .build();
        let wire_bits = msg.wire_size().bits();
        let flits = Flit::segment(msg, EngineId(3), width);
        let expect = wire_bits.div_ceil(width).max(1) as usize;
        prop_assert_eq!(flits.len(), expect);
        prop_assert_eq!(flits.iter().filter(|f| f.kind.is_head()).count(), 1);
        prop_assert_eq!(flits.iter().filter(|f| f.kind.is_tail()).count(), 1);
        for (i, f) in flits.iter().enumerate() {
            prop_assert_eq!(f.seq as usize, i);
            prop_assert_eq!(f.total as usize, expect);
        }
        let tail = flits.into_iter().next_back().unwrap();
        prop_assert_eq!(tail.into_message().payload.len(), payload_len);
    }

    /// PIFO pop order equals a stable sort by rank of the pushes.
    #[test]
    fn pifo_is_a_stable_priority_queue(ranks in proptest::collection::vec(0u64..50, 1..200)) {
        let mut pifo = Pifo::new();
        for (i, &r) in ranks.iter().enumerate() {
            pifo.push(r, i);
        }
        let mut expect: Vec<(u64, usize)> = ranks.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(r, i)| (r, i));
        let mut got = Vec::new();
        while let Some(i) = pifo.pop() {
            got.push(i);
        }
        prop_assert_eq!(got, expect.into_iter().map(|(_, i)| i).collect::<Vec<_>>());
    }

    /// Histogram quantiles are within the documented 7% relative error
    /// of exact order statistics for arbitrary sample sets.
    #[test]
    fn histogram_quantile_error_bound(mut samples in proptest::collection::vec(1u64..1_000_000, 10..500)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for &q in &[0.5f64, 0.9, 0.99] {
            let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
            let exact = samples[idx] as f64;
            let got = h.quantile(q) as f64;
            prop_assert!(
                (got - exact).abs() <= exact * 0.07 + 1.0,
                "q={} got {} exact {}", q, got, exact
            );
        }
        prop_assert_eq!(h.min(), samples[0]);
        prop_assert_eq!(h.max(), *samples.last().unwrap());
    }

    /// The standard parse graph never panics on arbitrary bytes and
    /// never claims layers beyond the input length.
    #[test]
    fn parser_is_total(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let g = ParseGraph::standard(6379);
        let out = g.parse(&data);
        prop_assert!(out.payload_offset <= data.len().max(out.payload_offset));
        // Each recognized layer's header must fit inside the input.
        for (layer, off) in &out.layers {
            prop_assert!(off + layer.header_size() <= data.len(),
                "layer {:?} at {} overruns {} bytes", layer, off, data.len());
        }
    }

    /// Deparse(parse(x)) == x for generated UDP frames with arbitrary
    /// ports and payloads (identity when the PHV is unmodified).
    #[test]
    fn deparse_identity(src_port in any::<u16>(), dst_port in any::<u16>(),
                        payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let frame = build_udp_frame(
            EthernetHeader {
                dst: MacAddr::for_port(0),
                src: MacAddr::for_port(1),
                ethertype: ethertype::IPV4,
            },
            Ipv4Header {
                tos: 3, total_len: 0, ident: 9, ttl: 61, protocol: 0,
                src: Ipv4Addr::new(10, 0, 0, 1), dst: Ipv4Addr::new(10, 0, 0, 2),
            },
            UdpHeader { src_port, dst_port, len: 0, checksum: 0 },
            &payload,
        );
        let g = ParseGraph::standard(6379);
        let out = g.parse(&frame);
        let rebuilt = rmt::deparse::deparse(&frame, &out, &out.phv);
        prop_assert_eq!(&rebuilt[..], &frame[..]);
    }
}
