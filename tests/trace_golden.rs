//! Golden tests for the Chrome-trace export (`docs/TRACING.md`).
//!
//! A tiny 2×2 mesh is driven with seeded traffic; the resulting
//! ChromeTraceSink JSON must (a) be valid JSON, (b) have monotonically
//! nondecreasing `ts` values in file order, and (c) be byte-for-byte
//! stable across runs with the same seed — the trace format is a
//! documented artifact, so accidental nondeterminism is a bug.

use bytes::Bytes;
use noc::network::{MeshNetwork, NetworkConfig};
use noc::router::RouterConfig;
use noc::topology::{Placement, Topology};
use packet::{EngineId, Message, MessageId, MessageKind};
use sim_core::rng::SimRng;
use sim_core::time::Cycle;
use trace::Tracer;

/// Drives a 2×2 mesh with seeded uniform traffic and returns the
/// rendered Chrome trace JSON.
fn traced_2x2_run(seed: u64) -> String {
    let topology = Topology::mesh(2, 2);
    let mut net = MeshNetwork::new(
        NetworkConfig {
            topology,
            width_bits: 64,
            router: RouterConfig::default(),
        },
        Placement::row_major(topology),
    );
    let tracer = Tracer::chrome();
    net.attach_tracer(&tracer);
    let mut rng = SimRng::new(seed);
    let n = topology.nodes();
    let mut now = Cycle(0);
    for id in 0..40u64 {
        let src = (rng.gen_range(n as u64)) as usize;
        let mut dst = (rng.gen_range(n as u64)) as usize;
        if dst == src {
            dst = (dst + 1) % n;
        }
        let msg = Message::builder(MessageId(id), MessageKind::Internal)
            .payload(Bytes::from(vec![0u8; 30]))
            .build();
        net.send(EngineId(src as u16), EngineId(dst as u16), msg, now);
        // Interleave sends with ticks so the trace has realistic
        // overlap (and, at this rate, some credit backpressure).
        net.tick(now);
        now = now.next();
        for node in 0..n {
            let _ = net.poll_ejected(EngineId(node as u16), now);
        }
    }
    for _ in 0..200 {
        net.tick(now);
        now = now.next();
        for node in 0..n {
            let _ = net.poll_ejected(EngineId(node as u16), now);
        }
    }
    tracer.chrome_json().expect("chrome tracer renders JSON")
}

/// Pulls every `"ts":<n>` out of the rendered JSON, in file order.
fn ts_values(json: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"ts\":") {
        rest = &rest[pos + 5..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        out.push(rest[..end].parse::<u64>().expect("numeric ts"));
        rest = &rest[end..];
    }
    out
}

#[test]
fn chrome_trace_is_valid_json() {
    let json = traced_2x2_run(7);
    trace::json::validate(&json).expect("trace output must be valid JSON");
    // And it actually contains mesh traffic, not just metadata.
    assert!(json.contains("noc.hop"), "expected hop events");
    assert!(json.contains("noc.msg"), "expected message spans");
}

#[test]
fn chrome_trace_timestamps_are_monotonic() {
    let json = traced_2x2_run(7);
    let ts = ts_values(&json);
    assert!(
        ts.len() > 50,
        "expected a substantive trace, got {}",
        ts.len()
    );
    for w in ts.windows(2) {
        assert!(w[0] <= w[1], "ts regressed: {} -> {}", w[0], w[1]);
    }
}

#[test]
fn chrome_trace_is_deterministic_for_a_seed() {
    let a = traced_2x2_run(7);
    let b = traced_2x2_run(7);
    assert_eq!(a, b, "same seed must give byte-identical traces");
    let c = traced_2x2_run(8);
    assert_ne!(a, c, "different seeds should change the trace");
}
