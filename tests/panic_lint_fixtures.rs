//! Negative-fixture self-test for `panic-lint` (satellite of the
//! tenancy-plane PR): the shipped binary must (a) stay green on the
//! shipped scenarios and (b) fail each deliberately broken PV6xx
//! tenancy fixture with the expected diagnostic.
//!
//! Exercising the *binary* (via `CARGO_BIN_EXE_panic-lint`) rather
//! than the library keeps the CLI surface — argument parsing, exit
//! codes, fixture wiring — under test, not just the lint pass.

use std::process::Command;

fn lint(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_panic-lint"))
        .args(args)
        .output()
        .expect("spawn panic-lint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn shipped_scenarios_stay_green() {
    let (ok, text) = lint(&["all"]);
    assert!(ok, "shipped scenarios must lint clean:\n{text}");
}

#[test]
fn pv6xx_pv7xx_and_pv8xx_fixtures_all_fire() {
    let (ok, text) = lint(&["--check-fixtures"]);
    assert!(ok, "a lint fixture failed to fire:\n{text}");
    for code in [
        "PV601", "PV602", "PV603", "PV604", "PV701", "PV702", "PV703", "PV704", "PV801", "PV802",
        "PV803", "PV804",
    ] {
        let line = text
            .lines()
            .find(|l| l.contains(code))
            .unwrap_or_else(|| panic!("no fixture line for {code}:\n{text}"));
        assert!(line.contains("ok"), "fixture for {code} missing:\n{text}");
    }
}

/// The offline `--json` output uses the same envelope — scenario,
/// control-protocol version, report — that the management plane's
/// online admission rejections serialize (`panic-ctrl`), byte for
/// byte. A drift between the two serializers fails here.
#[test]
fn json_envelope_matches_the_online_admission_serializer() {
    let (ok, text) = lint(&["--json", "kvs"]);
    assert!(ok, "kvs must lint clean:\n{text}");
    let line = text.lines().next().expect("one JSON line");
    let spec = panic_core::scenarios::KvsScenario::lint_spec(
        &panic_core::scenarios::KvsScenarioConfig::two_tenant_default(),
    );
    let expected = panic_verify::verify(&spec)
        .render_json_enveloped("kvs", u32::from(panic_ctrl::PROTO_VERSION));
    assert_eq!(line, expected, "offline and online envelopes must agree");
    assert!(line.starts_with("{\"scenario\":\"kvs\",\"proto_version\":1,\"report\":{"));
}
